// Synthetic graph generators.
//
// The paper evaluates on six real graphs (Table 4). Those datasets are not
// available offline, so the benches run on *scale models*: synthetic graphs
// whose vertex count, average degree, degree skew and (for web graphs)
// diameter are matched to the originals at ~1/200 – 1/1000 scale. The
// push/b-pull crossover depends on exactly those shape parameters (message
// volume vs buffer, fragment counts from skew, convergence length from
// diameter), so the models preserve the behaviour the paper measures.
#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.h"
#include "util/status.h"

namespace hybridgraph {

/// Uniform random digraph: each edge picks src and dst uniformly.
EdgeListGraph GenerateUniform(uint64_t num_vertices, uint64_t num_edges,
                              uint64_t seed);

/// Power-law "social network" style graph: out-degrees are Zipf(skew)
/// distributed with mean `avg_degree`; a `locality` fraction of targets land
/// near the source id (crawl-ordered real graphs exhibit exactly this — it
/// is what keeps VE-BLOCK fragment counts below the Theorem-2 bound) and the
/// rest are Zipf-skewed hub picks. Self-loops are re-drawn.
EdgeListGraph GeneratePowerLaw(uint64_t num_vertices, double avg_degree,
                               double skew, uint64_t seed,
                               double locality = 0.65);

/// "Web graph" style: power-law degrees plus strong id-locality (most links
/// go to nearby ids, a few long-range), producing the large effective
/// diameter that makes SSSP converge slowly (paper: 284 supersteps on wiki).
EdgeListGraph GenerateWebGraph(uint64_t num_vertices, double avg_degree,
                               double skew, double locality, uint64_t seed);

/// R-MAT recursive-matrix graph (Chakrabarti et al.): each edge recursively
/// descends into one of the four adjacency-matrix quadrants with
/// probabilities (a, b, c, 1-a-b-c). The default parameters give the skewed,
/// community-structured shape traversal benchmarks (Graph500) use — frontier
/// density varies sharply across Vblocks, which is what the adaptive path's
/// per-cell choice exploits. Self-loops are re-drawn.
EdgeListGraph GenerateRmat(uint64_t num_vertices, uint64_t num_edges,
                           uint64_t seed, double a = 0.57, double b = 0.19,
                           double c = 0.19);

/// Directed chain 0 -> 1 -> ... -> n-1: a single-vertex frontier every
/// superstep (worst case for pull, diameter n-1). `seed` only draws weights.
EdgeListGraph GenerateChain(uint64_t num_vertices, uint64_t seed);

/// Star around hub 0 (0 -> v and v -> 0 for all v): one superstep with a
/// maximally dense frontier. `seed` only draws weights.
EdgeListGraph GenerateStar(uint64_t num_vertices, uint64_t seed);

/// \brief Catalog entry for one paper-dataset scale model.
struct DatasetSpec {
  std::string name;        ///< e.g. "livej"
  uint64_t num_vertices;   ///< scaled |V|
  double avg_degree;       ///< matches Table 4
  double skew;             ///< Zipf exponent of the degree distribution
  bool web;                ///< web graph (locality + diameter) vs social
  double locality;         ///< id-locality of edge targets
  uint64_t seed;
  uint32_t default_nodes;  ///< cluster size the paper used (5 or 30)

  /// Scale factor versus the real dataset (for documentation).
  double scale;
};

/// The six Table-4 models: livej, wiki, orkut, twi, fri, uk.
const std::vector<DatasetSpec>& PaperDatasets();

/// Looks up a catalog entry by name.
Result<DatasetSpec> FindDataset(const std::string& name);

/// Materializes the graph for a catalog entry.
EdgeListGraph BuildDataset(const DatasetSpec& spec);

}  // namespace hybridgraph
