#!/bin/sh
# Runs every bench binary and writes the combined report to bench_output.txt.
set -u
OUT="${1:-bench_output.txt}"
: > "$OUT"
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "" >> "$OUT"
  echo "################ $b ################" >> "$OUT"
  "$b" >> "$OUT" 2>&1
done
echo "wrote $OUT"
