// Receiver-side message containers shared by every push-family MessagePath:
// the double-buffered inbox (memory portion B_i + sorted disk spill) and the
// per-vertex pending set Phase A collects into. Both store raw encoded
// message payloads so the containers compile once (no Program template) —
// PodCodec encode/decode is a memcpy round trip, so raw storage is
// bit-identical to the typed vectors the engine used to keep.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/types.h"
#include "io/message_spill.h"

namespace hybridgraph {

/// One direction of the double-buffered inbox: an in-memory array of
/// (destination, payload) records plus the spill the overflow goes to.
/// Capacity policy (B_i, pushM online computing) stays in the MessagePath;
/// this is storage plus counters only.
class MessageInbox {
 public:
  /// Must be called before any Append; `spill` may be null in unit tests.
  void Init(size_t msg_size, std::unique_ptr<MessageSpill> spill);

  void Append(VertexId dst, const uint8_t* payload);
  size_t count() const { return dsts_.size(); }
  VertexId dst(size_t i) const { return dsts_[i]; }
  const uint8_t* payload(size_t i) const { return payloads_.data() + i * msg_size_; }

  MessageSpill* spill() const { return spill_.get(); }

  /// Clears the memory portion and the counters (not the spill).
  void ClearMem();

  void Swap(MessageInbox& other);

  /// Messages received into this inbox (memory + spilled).
  uint64_t total = 0;
  /// Messages that overflowed B_i and went to the spill.
  uint64_t spilled = 0;

 private:
  size_t msg_size_ = 0;
  std::vector<VertexId> dsts_;
  std::vector<uint8_t> payloads_;
  std::unique_ptr<MessageSpill> spill_;
};

/// The per-local-vertex message groups Phase A (load()) assembles for Phase
/// B's update(). Combinable programs fold every arrival into one slot via the
/// raw combine shim; others append. Slot storage is recycled across
/// supersteps exactly like the old per-vertex vectors.
class PendingSet {
 public:
  using CombineRawFn = void (*)(uint8_t* acc, const uint8_t* other);

  /// `combiner` null means append (non-combinable program).
  void Init(uint32_t num_vertices, size_t msg_size, CombineRawFn combiner);

  void Add(uint32_t local_idx, const uint8_t* payload);
  bool Has(uint32_t local_idx) const { return has_[local_idx] != 0; }
  size_t CountAt(uint32_t local_idx) const {
    return slots_[local_idx].size() / msg_size_;
  }
  const uint8_t* DataAt(uint32_t local_idx) const {
    return slots_[local_idx].data();
  }
  size_t msg_size() const { return msg_size_; }

  /// Marks the slot consumed (keeps its capacity, like vector::clear()).
  void ConsumeAt(uint32_t local_idx);

  /// Messages added since the last ResetCount (the engine's pending_count).
  uint64_t added() const { return added_; }
  void ResetCount() { added_ = 0; }

 private:
  size_t msg_size_ = 0;
  CombineRawFn combiner_ = nullptr;
  std::vector<std::vector<uint8_t>> slots_;
  std::vector<uint8_t> has_;
  uint64_t added_ = 0;
};

}  // namespace hybridgraph
