// Per-node runtime state for the block-centric engine (push / pushM / b-pull
// / hybrid), shared by every MessagePath that runs over the SuperstepDriver.
//
// Everything here is deliberately non-template: message and value payloads
// are kept as raw encoded bytes (PodCodec is a memcpy round trip, so raw
// storage is bit-identical to the typed vectors the monolithic engine used),
// which lets the containers, the counters and the accounting over them
// compile once in src/core/*.cc instead of per Program instantiation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/inbox.h"
#include "core/run_metrics.h"
#include "core/send_staging.h"
#include "graph/adjacency_store.h"
#include "graph/partition.h"
#include "graph/ve_block_store.h"
#include "graph/vertex_store.h"
#include "io/prefetch.h"
#include "io/storage.h"
#include "net/transport.h"

namespace hybridgraph {

/// One simulated cluster node: its storage layouts, runtime flags, message
/// containers and per-superstep counters. MessagePath strategies own the
/// typed logic (GenMessage/Update/Combine); NodeState owns the data.
struct NodeState {
  NodeId id = 0;
  std::unique_ptr<StorageService> storage;
  std::unique_ptr<VertexValueStore> vstore;
  std::unique_ptr<AdjacencyStore> adj;
  std::unique_ptr<VeBlockStore> ve;
  // Overlapped-I/O readahead over `storage` (null when prefetch is off).
  // Declared after `storage` so it is destroyed first: its destructor
  // cancels and waits out background reads while storage is still alive.
  std::unique_ptr<ReadPipeline> pipeline;

  VertexRange range;
  // Runtime flags, indexed by (v - range.begin).
  std::vector<uint8_t> active;
  std::vector<uint8_t> responding;
  std::vector<uint8_t> responding_next;
  // X_j.res per local Vblock (indexed by global vb - first_vb).
  std::vector<uint8_t> vblock_res;
  std::vector<uint8_t> vblock_res_next;

  MessageInbox inbox_cur;
  MessageInbox inbox_next;

  // pushM online accumulators for cached ("memory-resident") vertices.
  // moc_acc holds one raw message payload per local vertex (combinable
  // programs only); moc_slots is the slot count for the modeled-memory
  // charge (the raw vector's size() is slots * msg_size).
  std::vector<uint8_t> moc_cached;
  std::vector<uint8_t> moc_acc;
  std::vector<uint8_t> moc_has;
  uint64_t moc_slots = 0;

  // Per-destination-node send staging (push production) with the sender-side
  // combining index (pushM+com, Appendix E).
  SendStaging staging;

  // Messages collected for consumption this superstep.
  PendingSet pending;

  // Incoming kPushMessages payloads staged by the transport handler
  // (indexed by sender), applied to the inbox at the post-Phase-B drain in
  // sender order. Staging is what makes parallel Phase B deterministic:
  // the drain order equals the arrival order of the old sequential
  // execution (all of node 0's batches, then node 1's, ...), so the
  // memory/spill split and every combine order are thread-count invariant.
  std::vector<std::vector<std::vector<uint8_t>>> push_staged;

  // Pull-Respond accounting staged per requester. The handler runs in the
  // requester's thread while this node may be busy with its own Phase A,
  // so it must not touch the shared per-superstep counters directly; the
  // staged values are merged in requester order after the Phase A barrier,
  // which reproduces the sequential accumulation order exactly (floating-
  // point sums included).
  struct PullServe {
    IoBreakdown io;
    double cpu_seconds = 0;
    uint64_t msgs_produced = 0;
    uint64_t msgs_combined = 0;
    uint64_t msgs_wire = 0;
    uint64_t flushes = 0;
    uint64_t bs_highwater = 0;
  };
  std::vector<PullServe> pull_serve;

  // Per-superstep counters.
  double aggregate_partial = 0;
  uint64_t updated_vertices = 0;
  uint64_t msgs_produced = 0;
  uint64_t msgs_wire = 0;
  uint64_t msgs_combined = 0;
  uint64_t flushes = 0;
  double cpu_seconds = 0;
  uint64_t mem_highwater = 0;
  // Streaming spill-merge observability (push-consume drain).
  uint64_t spill_buffer_peak = 0;    ///< run-buffer bytes held by the merge
  uint64_t spill_resident_peak = 0;  ///< peak resident spill entries
  uint64_t spill_combined = 0;       ///< combiner reductions (spill + merge)
  // Prefetch-pipeline observability (drained from ReadPipeline at
  // end-of-superstep accounting; measured, not modeled).
  uint64_t prefetch_scheduled = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_misses = 0;
  uint64_t prefetch_hit_bytes = 0;
  // I/O classification counters (bytes).
  IoBreakdown io;

  DiskMeter disk_snapshot;
  NetMeter net_snapshot;

  uint32_t LocalIdx(VertexId v) const { return v - range.begin; }
};

/// Folds the per-requester Pull-Respond counters into the node's counters
/// in requester order — the order the sequential engine accumulated them —
/// so float sums (cpu_seconds) are bit-identical at any thread count.
void MergePullServeCounters(NodeState& node, uint32_t num_nodes);

}  // namespace hybridgraph
