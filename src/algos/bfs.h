// BFS depth labeling from one source (extension workload): Traversal-Style,
// combinable (min).
#pragma once

#include "core/program.h"

namespace hybridgraph {

/// \brief BFS vertex program: value is the hop distance from the source
/// (UINT32_MAX when unreached).
struct BfsProgram {
  using Value = uint32_t;
  using Message = uint32_t;
  static constexpr bool kCombinable = true;
  static constexpr bool kAlwaysActive = false;
  static constexpr size_t kValueSize = sizeof(Value);
  static constexpr size_t kMessageSize = sizeof(Message);

  VertexId source = 0;
  static constexpr uint32_t kUnreached = UINT32_MAX;

  Value InitValue(VertexId v, const SuperstepContext&) const {
    return v == source ? 0 : kUnreached;
  }
  bool InitActive(VertexId v) const { return v == source; }

  UpdateResult Update(VertexId v, Value* value, const std::vector<Message>& msgs,
                      const SuperstepContext& ctx) const {
    if (ctx.superstep == 0) {
      return {false, v == source};
    }
    uint32_t best = kUnreached;
    for (uint32_t m : msgs) best = m < best ? m : best;
    if (best < *value) {
      *value = best;
      return {true, true};
    }
    return {false, false};
  }

  Message GenMessage(VertexId, const Value& value, uint32_t, const Edge&,
                     const SuperstepContext&) const {
    return value + 1;
  }

  static Message Combine(const Message& a, const Message& b) {
    return a < b ? a : b;
  }
};

}  // namespace hybridgraph
