#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hybridgraph {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(42), c2(43);
  EXPECT_NE(a2.Next(), c2.Next());
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  double min = 1.0, max = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    min = std::min(min, d);
    max = std::max(max, d);
  }
  EXPECT_LT(min, 0.05);  // covers the range
  EXPECT_GT(max, 0.95);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(Zipf, RanksInRange) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t r = zipf.Sample(&rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(Zipf, SkewFavorsLowRanks) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(5);
  uint64_t low = 0, high = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t r = zipf.Sample(&rng);
    if (r <= 10) ++low;
    if (r > 500) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(Zipf, ZeroSkewIsUniformish) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(5);
  std::vector<int> counts(11, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&rng)];
  for (int r = 1; r <= 10; ++r) {
    EXPECT_NEAR(counts[r], kSamples / 10, kSamples / 50) << "rank " << r;
  }
}

class ZipfMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfMeanTest, EmpiricalMeanMatchesAnalytic) {
  const double s = GetParam();
  const uint64_t n = 200;
  ZipfSampler zipf(n, s);
  // Analytic mean: sum(r * r^-s) / sum(r^-s).
  double num = 0, den = 0;
  for (uint64_t r = 1; r <= n; ++r) {
    num += static_cast<double>(r) * std::pow(r, -s);
    den += std::pow(r, -s);
  }
  const double expected = num / den;

  Rng rng(99);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += static_cast<double>(zipf.Sample(&rng));
  EXPECT_NEAR(sum / kSamples, expected, expected * 0.03) << "s=" << s;
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfMeanTest,
                         ::testing::Values(0.3, 0.7, 1.0, 1.5));

}  // namespace
}  // namespace hybridgraph
