// Disk spill for push-mode messages (Giraph-style).
//
// When the receiver-side message buffer B_i overflows, the buffered messages
// are sorted by destination vertex and written out as a run. At the start of
// the next superstep all runs are k-way merged so each vertex sees its
// messages grouped together. Run writes are metered as RANDOM writes — this
// is exactly the "poor temporal locality of messages among destination
// vertices, caused by writing data randomly" cost the paper attributes to
// push — while merge reads are sequential (the 2·IO(M_disk) term of Eq. 7
// splits into IO(M_disk)/s_rw + IO(M_disk)/s_sr in Eq. 11).
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "io/storage.h"
#include "util/codec.h"
#include "util/status.h"

namespace hybridgraph {

/// One spilled message: destination vertex + opaque fixed-size payload.
struct SpillEntry {
  uint32_t dst;
  std::vector<uint8_t> payload;
};

/// \brief Writes sorted runs of messages and merge-reads them back.
class MessageSpill {
 public:
  /// \param storage metered storage of the owning node.
  /// \param key_prefix unique per (node, superstep parity) to avoid clashes.
  /// \param payload_size fixed serialized size of one message value.
  MessageSpill(StorageService* storage, std::string key_prefix, size_t payload_size);

  /// Sorts `entries` by destination and writes them as one run.
  Status SpillRun(std::vector<SpillEntry> entries);

  /// Number of runs written so far.
  size_t num_runs() const { return num_runs_; }
  /// Total messages spilled so far.
  uint64_t num_messages() const { return num_messages_; }
  /// Total bytes written to disk by this spill.
  uint64_t bytes_written() const { return bytes_written_; }

  /// K-way merges all runs and appends every entry, grouped by ascending
  /// destination, to `*out`. Reads are metered sequential.
  Status MergeReadAll(std::vector<SpillEntry>* out);

  /// Deletes all run blobs and resets state for reuse.
  Status Clear();

 private:
  std::string RunKey(size_t i) const;

  StorageService* storage_;
  std::string key_prefix_;
  size_t payload_size_;
  size_t num_runs_ = 0;
  uint64_t num_messages_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace hybridgraph
